//! The reusable influence oracle (Section 5.2).
//!
//! The exact influence spread is ♯P-hard to compute, so the paper evaluates
//! the quality of every returned seed set with a single, *shared* estimator:
//! a pool of 10⁷ RR sets per influence graph, reused across all runs of all
//! algorithms so that identical seed sets always receive the identical
//! estimate. The 99 % confidence half-width of the oracle for a true spread of
//! `Inf(S)` is `1.29·n/√pool` (each RR set intersecting `S` is a Bernoulli
//! trial with success probability `Inf(S)/n`).

use imgraph::binio::{self, BinError, BinReader, BinWriter};
use imgraph::{GraphDelta, InfluenceGraph, VertexId};
use impool::{Pool, PoolLayout, TieredConfig};
use imrand::Rng32;

use crate::ris::RrScratch;
use crate::sampler::{self, Backend, SampleBudget};
use crate::seed_set::SeedSet;

/// Magic bytes of a serialized RR-set pool.
pub const POOL_MAGIC: [u8; 4] = *b"IMPL";
/// Current RR-set pool format version.
pub const POOL_VERSION: u32 = 1;

const POOL_HEAD_TAG: [u8; 4] = *b"HEAD";
const POOL_LEN_TAG: [u8; 4] = *b"PLEN";
const POOL_IDS_TAG: [u8; 4] = *b"PIDS";

/// Append `set_id` to the posting list of every member vertex of one RR set
/// (shared by the stream and batched build paths).
fn index_rr_set(vertex_to_sets: &mut [Vec<u32>], set_id: u32, vertices: &[VertexId]) {
    for &v in vertices {
        vertex_to_sets[v as usize].push(set_id);
    }
}

/// A shared, read-only influence estimator backed by a pool of RR sets.
///
/// The physical pool layout is delegated to an [`impool::Pool`] store: the
/// per-vertex posting lists (and, for incrementally maintainable pools, the
/// per-set traces) may live uncompressed in RAM, delta-varint compressed, or
/// tiered to a cold index file — every query path scans through the store
/// and returns identical results in identical order regardless of layout.
#[derive(Debug, Clone)]
pub struct InfluenceOracle {
    /// The pool store: posting lists (vertex → RR-set ids, increasing) plus,
    /// for incremental pools, the inverse traces.
    pool: Pool,
    pool_size: usize,
    num_vertices: usize,
    /// Present iff the pool was drawn with per-set PRNG streams
    /// ([`OracleBuilder::incremental`]), which is what makes
    /// [`InfluenceOracle::apply_delta`] possible.
    incremental: Option<IncrementalState>,
    // Interior mutability is deliberately avoided: `estimate` takes `&self`
    // and allocates per call, which is fine for the experiment harness. The
    // serving hot path passes an explicit [`EstimateScratch`] to
    // `estimate_with` instead, keeping `&self` queries shareable across
    // threads with zero per-query allocation.
    _private: (),
}

/// The extra state an incrementally maintainable pool carries: the base seed
/// its per-set PRNG streams derive from and the pool's offset into the
/// global set-id space (zero for a whole pool, the shard's start for a pool
/// shard). The per-set traces themselves live in the pool store, inverse to
/// the posting lists, so a mutation can locate and unindex exactly the sets
/// it dirties in any layout.
#[derive(Debug, Clone, Copy)]
struct IncrementalState {
    base_seed: u64,
    set_id_offset: u64,
}

/// One shard's slice of a global RR-set pool: `len` sets whose PRNG streams
/// derive from global set ids `offset..offset + len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// The shard's first global set id (its stream offset).
    pub offset: u64,
    /// RR sets in the shard.
    pub len: usize,
}

/// Split a global pool of `global_pool` RR sets into `shards` contiguous
/// shards, as balanced as possible (the first `global_pool % shards` shards
/// get one extra set). Because every set's PRNG stream derives from its
/// *global* id, the concatenation of the shard pools is byte-identical to
/// the single pool drawn at the same seed — the shard-union invariant the
/// sharded serving layer relies on.
///
/// # Panics
///
/// Panics if `shards == 0` or `global_pool < shards` (an empty shard could
/// never answer a query).
#[must_use]
pub fn shard_layout(global_pool: usize, shards: usize) -> Vec<ShardRange> {
    assert!(shards > 0, "at least one shard");
    assert!(
        global_pool >= shards,
        "global pool of {global_pool} cannot feed {shards} non-empty shards"
    );
    let base = global_pool / shards;
    let extra = global_pool % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut offset = 0u64;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        ranges.push(ShardRange { offset, len });
        offset += len as u64;
    }
    ranges
}

/// The one construction path for [`InfluenceOracle`] pools.
///
/// The builder subsumes the former constructor sprawl
/// (`build`/`build_with_backend`/`build_incremental`/`from_parts`):
///
/// * [`OracleBuilder::sample`] draws the pool from seeded batch streams —
///   per-batch streams by default, one stream *per RR set* with
///   [`OracleBuilder::incremental`] (the discipline that makes
///   [`InfluenceOracle::apply_delta`] exact), optionally offset into a
///   global set-id space with [`OracleBuilder::shard_offset`] so N shard
///   pools union byte-identically into one pool;
/// * [`OracleBuilder::sample_with_rng`] is the paper-faithful sequential
///   path drawing every set from one caller-supplied stream;
/// * [`OracleBuilder::assemble`] is the no-sampling import half of the
///   persistence layer (posting lists in, validated oracle out).
///
/// ```
/// use im_core::sampler::Backend;
/// use im_core::InfluenceOracle;
/// use imgraph::{DiGraph, InfluenceGraph};
///
/// let ig = InfluenceGraph::new(DiGraph::from_edges(3, &[(0, 1), (1, 2)]), vec![0.5; 2]);
/// let oracle = InfluenceOracle::builder(1_000)
///     .seed(7)
///     .backend(Backend::Sequential)
///     .incremental()
///     .sample(&ig);
/// assert!(oracle.is_incremental());
/// ```
#[derive(Debug, Clone)]
pub struct OracleBuilder {
    pool_size: usize,
    base_seed: u64,
    backend: Backend,
    incremental: bool,
    set_id_offset: u64,
    layout: PoolLayout,
}

impl OracleBuilder {
    /// Seed of the derived PRNG streams (default `0`).
    #[must_use]
    pub fn seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Physical pool layout of the built oracle (default
    /// [`PoolLayout::Raw`]). The layout changes *where bytes live*, never a
    /// query result: every layout answers byte-identically (including
    /// [`InfluenceOracle::to_bytes`]) at every maintenance epoch. A
    /// [`PoolLayout::Tiered`] build starts fully resident — its data regions
    /// demote to a cold file only once the oracle is re-loaded from a
    /// persisted index artifact.
    #[must_use]
    pub fn layout(mut self, layout: PoolLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Execution backend for the sampling loop (default sequential). The
    /// backend only changes *where* sets are drawn, never what is drawn.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Draw every RR set from its **own** PRNG stream (seeded by running the
    /// base seed and the set's global id through SplitMix64) instead of
    /// per-batch streams. Per-set streams are what make
    /// [`InfluenceOracle::apply_delta`] exact rather than approximate:
    /// regenerating set `i` in isolation replays precisely the draws a
    /// from-scratch rebuild at the same version would feed it.
    #[must_use]
    pub fn incremental(mut self) -> Self {
        self.incremental = true;
        self
    }

    /// Build this pool as a **shard** of a larger global pool: the local
    /// sets' PRNG streams derive from global ids `offset..offset + pool`,
    /// so shards produced from one [`shard_layout`] union byte-identically
    /// into the single pool drawn at the same seed. Implies
    /// [`OracleBuilder::incremental`] (a shard must stay maintainable under
    /// the same broadcast mutations as its siblings).
    #[must_use]
    pub fn shard_offset(mut self, offset: u64) -> Self {
        self.set_id_offset = offset;
        self.incremental = true;
        self
    }

    fn check_dimensions(&self, graph: &InfluenceGraph) -> usize {
        assert!(self.pool_size > 0, "oracle needs a non-empty RR-set pool");
        let n = graph.num_vertices();
        assert!(n > 0, "oracle needs a non-empty graph");
        assert!(
            self.set_id_offset as u128 + self.pool_size as u128 <= u128::from(u32::MAX),
            "pool size exceeds u32 set ids"
        );
        n
    }

    /// Draw the pool from the builder's seeded streams.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty, the graph is empty, or the (offset) pool
    /// exceeds `u32` set ids.
    #[must_use]
    pub fn sample(&self, graph: &InfluenceGraph) -> InfluenceOracle {
        let n = self.check_dimensions(graph);
        if self.incremental {
            let base_seed = self.base_seed;
            let offset = self.set_id_offset;
            let members = sampler::sample_batched(
                &SampleBudget::new(self.pool_size as u64),
                base_seed,
                self.backend,
                || RrScratch::for_graph(graph),
                |scratch, set_id, _| {
                    // Ignore the batch stream: every set derives its own,
                    // keyed by its *global* id.
                    let mut rng = sampler::batch_rng(base_seed, offset + set_id);
                    scratch.generate(graph, &mut rng).vertices
                },
            );
            let mut vertex_to_sets: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut traces: Vec<Vec<VertexId>> = Vec::with_capacity(self.pool_size);
            for (set_id, mut vertices) in members.into_iter().enumerate() {
                index_rr_set(&mut vertex_to_sets, set_id as u32, &vertices);
                // Traces are kept sorted: the canonical form reconstruction
                // by posting-list inversion also produces (see
                // `attach_incremental`).
                vertices.sort_unstable();
                traces.push(vertices);
            }
            let pool =
                Pool::raw(n, self.pool_size, vertex_to_sets, Some(traces)).convert(self.layout);
            InfluenceOracle {
                pool,
                pool_size: self.pool_size,
                num_vertices: n,
                incremental: Some(IncrementalState {
                    base_seed,
                    set_id_offset: offset,
                }),
                _private: (),
            }
        } else {
            // Workers return only the member lists; the posting lists are
            // merged in deterministic batch order on the calling thread.
            let members = sampler::sample_batched(
                &SampleBudget::new(self.pool_size as u64),
                self.base_seed,
                self.backend,
                || RrScratch::for_graph(graph),
                |scratch, _, rng| scratch.generate(graph, rng).vertices,
            );
            let mut vertex_to_sets: Vec<Vec<u32>> = vec![Vec::new(); n];
            for (set_id, vertices) in members.into_iter().enumerate() {
                index_rr_set(&mut vertex_to_sets, set_id as u32, &vertices);
            }
            let pool = Pool::raw(n, self.pool_size, vertex_to_sets, None).convert(self.layout);
            InfluenceOracle {
                pool,
                pool_size: self.pool_size,
                num_vertices: n,
                incremental: None,
                _private: (),
            }
        }
    }

    /// Draw the pool sequentially from one caller-supplied stream (the
    /// paper-faithful discipline of the original experiments). Incompatible
    /// with [`OracleBuilder::incremental`] / [`OracleBuilder::shard_offset`]
    /// — a caller-owned stream cannot be replayed per set.
    ///
    /// # Panics
    ///
    /// Panics on empty pools/graphs or if the builder requested per-set
    /// streams.
    #[must_use]
    pub fn sample_with_rng<R: Rng32>(
        &self,
        graph: &InfluenceGraph,
        rng: &mut R,
    ) -> InfluenceOracle {
        assert!(
            !self.incremental && self.set_id_offset == 0,
            "per-set streams need a seeded build; use OracleBuilder::sample"
        );
        let n = self.check_dimensions(graph);
        // Stream discipline over the shared RR-set scratch; posting lists are
        // filled as sets are drawn so the member lists are never all held at
        // once (pools go up to 10⁷ sets).
        let mut vertex_to_sets: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut scratch = RrScratch::for_graph(graph);
        sampler::fold_stream(self.pool_size as u64, rng, (), |(), set_id, rng| {
            let rr = scratch.generate(graph, rng);
            index_rr_set(&mut vertex_to_sets, set_id as u32, &rr.vertices);
        });
        let pool = Pool::raw(n, self.pool_size, vertex_to_sets, None).convert(self.layout);
        InfluenceOracle {
            pool,
            pool_size: self.pool_size,
            num_vertices: n,
            incremental: None,
            _private: (),
        }
    }

    /// Reassemble an oracle from previously exported posting lists — the
    /// import half of the persistence layer. Validates the invariants the
    /// query paths rely on and constructs the oracle **without any
    /// sampling**: no graph and no random generator are involved, so loading
    /// a persisted pool can never resample it.
    ///
    /// Invariants checked: the builder's pool is non-empty, at least one
    /// vertex, every set id `< pool_size`, and every posting list strictly
    /// increasing (the order the builders produce; `estimate` relies on it
    /// for dedup-by-merge).
    pub fn assemble(
        &self,
        num_vertices: usize,
        vertex_to_sets: Vec<Vec<u32>>,
    ) -> Result<InfluenceOracle, String> {
        let pool_size = self.pool_size;
        if pool_size == 0 {
            return Err("oracle needs a non-empty RR-set pool".into());
        }
        if num_vertices == 0 {
            return Err("oracle needs a non-empty graph".into());
        }
        if vertex_to_sets.len() != num_vertices {
            return Err(format!(
                "{} posting lists for {num_vertices} vertices",
                vertex_to_sets.len()
            ));
        }
        for (v, list) in vertex_to_sets.iter().enumerate() {
            let mut prev: Option<u32> = None;
            for &id in list {
                if id as usize >= pool_size {
                    return Err(format!(
                        "vertex {v} references RR set {id} outside pool of {pool_size}"
                    ));
                }
                if let Some(p) = prev {
                    if id <= p {
                        return Err(format!(
                            "posting list of vertex {v} is not strictly increasing"
                        ));
                    }
                }
                prev = Some(id);
            }
        }
        let pool = Pool::raw(num_vertices, pool_size, vertex_to_sets, None).convert(self.layout);
        Ok(InfluenceOracle {
            pool,
            pool_size,
            num_vertices,
            incremental: None,
            _private: (),
        })
    }
}

/// Reusable per-caller scratch for [`InfluenceOracle::estimate_with`].
///
/// Holds one epoch mark per pool RR set; bumping the epoch invalidates all
/// marks in O(1), so repeated estimates perform no allocation and no clearing
/// pass. Each worker thread owns its own scratch (the oracle itself stays
/// immutable and shareable behind an `Arc`).
#[derive(Debug, Clone)]
pub struct EstimateScratch {
    marks: Vec<u32>,
    epoch: u32,
}

impl EstimateScratch {
    /// Scratch sized for `oracle`'s pool.
    #[must_use]
    pub fn for_oracle(oracle: &InfluenceOracle) -> Self {
        Self {
            marks: vec![0u32; oracle.pool_size],
            epoch: 0,
        }
    }

    /// Advance to a fresh epoch, resetting marks when the counter wraps.
    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.marks.iter_mut().for_each(|m| *m = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

impl InfluenceOracle {
    /// Start building a pool of `pool_size` RR sets — the single entry point
    /// for every construction path (seeded batch sampling, per-set
    /// incremental streams, pool shards, caller-supplied streams, and
    /// no-sampling reassembly from exported parts).
    ///
    /// The paper uses 10⁷ sets; the experiment harness scales the pool with
    /// the graph size so the oracle's confidence interval stays well below
    /// the 5 % near-optimality margin it is used to judge.
    #[must_use]
    pub fn builder(pool_size: usize) -> OracleBuilder {
        OracleBuilder {
            pool_size,
            base_seed: 0,
            backend: Backend::Sequential,
            incremental: false,
            set_id_offset: 0,
            layout: PoolLayout::Raw,
        }
    }

    /// Adopt an already-validated pool store as an oracle (the import path
    /// for compressed `PCMP` index sections, whose decoder enforces the same
    /// invariants [`OracleBuilder::assemble`] checks on raw lists: strictly
    /// increasing posting lists with every id inside the pool).
    pub fn from_pool(pool: Pool) -> Result<Self, String> {
        if pool.pool_size() == 0 {
            return Err("oracle needs a non-empty RR-set pool".into());
        }
        if pool.num_vertices() == 0 {
            return Err("oracle needs a non-empty graph".into());
        }
        Ok(InfluenceOracle {
            pool_size: pool.pool_size(),
            num_vertices: pool.num_vertices(),
            pool,
            incremental: None,
            _private: (),
        })
    }

    /// Decode a compressed `PCMP` pool payload ([`impool::decode_pcmp_payload`])
    /// into an oracle, returning the layout hint the payload was stamped with
    /// (`Compressed` or `Tiered`). The decoder's eager validation is what
    /// makes [`InfluenceOracle::from_pool`] sound here.
    pub fn from_pcmp_payload(payload: &[u8]) -> Result<(Self, PoolLayout), String> {
        let (packed, hint) = impool::decode_pcmp_payload(payload).map_err(|e| e.to_string())?;
        let pool = match hint {
            PoolLayout::Tiered => Pool::Tiered(packed),
            _ => Pool::Compressed(packed),
        };
        Ok((Self::from_pool(pool)?, hint))
    }

    /// The pool store behind this oracle.
    #[must_use]
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The physical layout of the pool store.
    #[must_use]
    pub fn pool_layout(&self) -> PoolLayout {
        self.pool.layout()
    }

    /// Bytes of process memory the pool store keeps resident (see
    /// [`impool::PoolStore::resident_bytes`]).
    #[must_use]
    pub fn pool_resident_bytes(&self) -> usize {
        self.pool.resident_bytes()
    }

    /// Convert the pool store to another layout in place. Purely physical:
    /// every query (and [`InfluenceOracle::to_bytes`]) answers identically
    /// before and after.
    pub fn convert_layout(&mut self, layout: PoolLayout) {
        if self.pool.layout() != layout {
            self.pool = self.pool.convert(layout);
        }
    }

    /// Encode the pool as a `PCMP` index-section payload (any layout; see
    /// [`impool::decode_pcmp_payload`]).
    #[must_use]
    pub fn encode_pcmp_payload(&self, hint: PoolLayout) -> Vec<u8> {
        self.pool.encode_pcmp_payload(hint)
    }

    /// Demote a tiered pool's data regions to the cold backing `file` (the
    /// index artifact whose `PCMP` payload starts at `payload_offset`).
    /// No-op for raw/compressed pools.
    pub fn attach_cold_pool_file(
        &mut self,
        file: std::sync::Arc<std::fs::File>,
        payload_offset: u64,
        config: TieredConfig,
    ) {
        self.pool.attach_cold_file(file, payload_offset, config);
    }

    /// Build an oracle by drawing `pool_size` RR sets from `rng`.
    #[deprecated(note = "use InfluenceOracle::builder(pool_size).sample_with_rng(graph, rng)")]
    pub fn build<R: Rng32>(graph: &InfluenceGraph, pool_size: usize, rng: &mut R) -> Self {
        Self::builder(pool_size).sample_with_rng(graph, rng)
    }

    /// Build an oracle with the batched sampler over per-batch streams.
    #[deprecated(note = "use InfluenceOracle::builder(pool_size).seed(s).backend(b).sample(graph)")]
    pub fn build_with_backend(
        graph: &InfluenceGraph,
        pool_size: usize,
        base_seed: u64,
        backend: Backend,
    ) -> Self {
        Self::builder(pool_size)
            .seed(base_seed)
            .backend(backend)
            .sample(graph)
    }

    /// Build an *incrementally maintainable* oracle over per-set streams.
    #[deprecated(
        note = "use InfluenceOracle::builder(pool_size).seed(s).backend(b).incremental().sample(graph)"
    )]
    pub fn build_incremental(
        graph: &InfluenceGraph,
        pool_size: usize,
        base_seed: u64,
        backend: Backend,
    ) -> Self {
        Self::builder(pool_size)
            .seed(base_seed)
            .backend(backend)
            .incremental()
            .sample(graph)
    }

    /// Whether this pool carries the per-set state needed by
    /// [`InfluenceOracle::apply_delta`].
    #[must_use]
    pub fn is_incremental(&self) -> bool {
        self.incremental.is_some()
    }

    /// The base seed of an incrementally maintainable pool.
    #[must_use]
    pub fn incremental_base_seed(&self) -> Option<u64> {
        self.incremental.as_ref().map(|s| s.base_seed)
    }

    /// The pool's offset into the global set-id space: zero for a whole
    /// pool, the shard's first global set id for a pool shard built with
    /// [`OracleBuilder::shard_offset`]. `None` for non-incremental pools.
    #[must_use]
    pub fn set_id_offset(&self) -> Option<u64> {
        self.incremental.as_ref().map(|s| s.set_id_offset)
    }

    /// The sorted member trace of one RR set of an incremental pool
    /// (materialized from the pool store, whatever its layout).
    #[must_use]
    pub fn trace(&self, set_id: u32) -> Option<Vec<VertexId>> {
        if self.incremental.is_none()
            || !self.pool.has_traces()
            || set_id as usize >= self.pool_size
        {
            return None;
        }
        Some(self.pool.trace(set_id))
    }

    /// Re-attach incremental state to a pool that was reloaded from bytes.
    ///
    /// The per-set traces are derivable from the posting lists (they are each
    /// other's inverse), so persistence never stores them: this inverts the
    /// posting lists in `O(Σ|R|)` and records `base_seed` as the stream
    /// derivation root and `set_id_offset` as the pool's position in the
    /// global set-id space (zero for a whole pool, the shard's start for a
    /// shard pool). The caller asserts — typically via artifact metadata —
    /// that both match the values the pool was originally drawn with and
    /// that the pool was built with per-set streams
    /// ([`OracleBuilder::incremental`]); with a wrong seed or offset, later
    /// [`InfluenceOracle::apply_delta`] calls would resample dirty sets from
    /// streams a rebuild would not use.
    pub fn attach_incremental(&mut self, base_seed: u64, set_id_offset: u64) {
        // Iterating vertices in increasing order yields sorted traces — the
        // same canonical form the incremental builder stores. The inversion
        // runs inside the pool store (and is a no-op for stores that already
        // carry traces, e.g. a decoded PCMP section with both directions).
        self.pool.build_traces();
        self.incremental = Some(IncrementalState {
            base_seed,
            set_id_offset,
        });
    }

    /// Incrementally maintain the pool under one graph mutation.
    ///
    /// `graph_after` must be the influence graph *with the delta already
    /// applied* (same fixed vertex set). The reverse BFS that generates an RR
    /// set only examines the in-edges of vertices *inside* the set, so a
    /// mutation of edge `(u, v)` can change the outcome of exactly those sets
    /// that contain the head vertex `v`: any set not containing `v` replays
    /// the same traversal — and consumes the same random draws from its own
    /// stream — on the mutated graph. This method therefore resamples only
    /// the posting list of `v`, each dirty set from its own derived stream,
    /// and the result is **byte-identical** (via [`InfluenceOracle::to_bytes`])
    /// to `build_incremental(graph_after, pool_size, base_seed, _)`.
    ///
    /// Returns the number of RR sets resampled. Errors (non-incremental pool,
    /// mismatched graph, out-of-range head) leave the oracle untouched.
    pub fn apply_delta(
        &mut self,
        graph_after: &InfluenceGraph,
        delta: &GraphDelta,
    ) -> Result<usize, String> {
        let (base_seed, offset) = match &self.incremental {
            Some(state) => (state.base_seed, state.set_id_offset),
            None => {
                return Err(
                    "oracle pool was not built incrementally (use OracleBuilder::incremental)"
                        .into(),
                )
            }
        };
        if graph_after.num_vertices() != self.num_vertices {
            return Err(format!(
                "mutated graph has {} vertices but the pool indexes {}",
                graph_after.num_vertices(),
                self.num_vertices
            ));
        }
        let head = delta.head();
        if head as usize >= self.num_vertices {
            return Err(format!(
                "delta head {head} out of range for {} vertices",
                self.num_vertices
            ));
        }

        let dirty = self.pool.postings(head);
        self.resample_sets(graph_after, base_seed, offset, &dirty);
        Ok(dirty.len())
    }

    /// Incrementally maintain the pool under an atomic **batch** of graph
    /// mutations, resampling every affected RR set **exactly once**.
    ///
    /// `graph_after` must be the influence graph with the *whole batch*
    /// already applied (same fixed vertex set). The dirty set is the union of
    /// the current posting lists of every delta's head vertex: an RR set
    /// containing none of the heads replays, draw for draw, the identical
    /// traversal on the fully mutated graph (the reverse BFS only examines
    /// in-edges of in-set vertices, and only the heads' in-edge lists
    /// changed), while a set containing any head is regenerated from its own
    /// derived stream exactly as a from-scratch rebuild at the final version
    /// would. The result is therefore **byte-identical** (via
    /// [`InfluenceOracle::to_bytes`]) both to
    /// `build_incremental(graph_after, …)` and to applying the same deltas
    /// one at a time through [`InfluenceOracle::apply_delta`] — but a set
    /// dirtied by `k` deltas of the batch is resampled once, not `k` times.
    ///
    /// Returns the number of RR sets resampled (the union's size). Errors
    /// (non-incremental pool, mismatched graph, out-of-range head) leave the
    /// oracle untouched; an empty batch is a no-op.
    pub fn apply_delta_batch(
        &mut self,
        graph_after: &InfluenceGraph,
        deltas: &[GraphDelta],
    ) -> Result<usize, String> {
        let (base_seed, offset) = match &self.incremental {
            Some(state) => (state.base_seed, state.set_id_offset),
            None => {
                return Err(
                    "oracle pool was not built incrementally (use OracleBuilder::incremental)"
                        .into(),
                )
            }
        };
        if graph_after.num_vertices() != self.num_vertices {
            return Err(format!(
                "mutated graph has {} vertices but the pool indexes {}",
                graph_after.num_vertices(),
                self.num_vertices
            ));
        }
        let mut dirty: Vec<u32> = Vec::new();
        for delta in deltas {
            let head = delta.head();
            if head as usize >= self.num_vertices {
                return Err(format!(
                    "delta head {head} out of range for {} vertices",
                    self.num_vertices
                ));
            }
            self.pool.for_each_posting_inline(head, |id| dirty.push(id));
        }
        dirty.sort_unstable();
        dirty.dedup();
        self.resample_sets(graph_after, base_seed, offset, &dirty);
        Ok(dirty.len())
    }

    /// Resample the given RR sets on `graph_after`, each from its own derived
    /// stream (keyed by global id `offset + local id`), keeping posting lists
    /// and traces inverse to each other (the shared core of
    /// [`InfluenceOracle::apply_delta`] and
    /// [`InfluenceOracle::apply_delta_batch`]).
    fn resample_sets(
        &mut self,
        graph_after: &InfluenceGraph,
        base_seed: u64,
        offset: u64,
        dirty: &[u32],
    ) {
        let mut scratch = RrScratch::for_graph(graph_after);
        for &set_id in dirty {
            // The set's previous members, to be unindexed from their postings.
            let old_trace = self.pool.trace(set_id);
            // Regenerate the set from its own stream, exactly as a rebuild
            // at this version would.
            let mut rng = sampler::batch_rng(base_seed, offset + u64::from(set_id));
            let mut trace = scratch.generate(graph_after, &mut rng).vertices;
            trace.sort_unstable();
            // One store-level swap keeps postings and traces inverse to each
            // other in every layout (compressed stores shadow the dirtied
            // lists in their mutation overlay).
            self.pool.replace_set(set_id, &old_trace, &trace);
        }
    }

    /// Reassemble an oracle from previously exported posting lists.
    #[deprecated(note = "use InfluenceOracle::builder(pool_size).assemble(num_vertices, lists)")]
    pub fn from_parts(
        num_vertices: usize,
        pool_size: usize,
        vertex_to_sets: Vec<Vec<u32>>,
    ) -> Result<Self, String> {
        Self::builder(pool_size).assemble(num_vertices, vertex_to_sets)
    }

    /// Materialize the posting list of one vertex (the RR-set ids containing
    /// it, strictly increasing). Layout-independent; for bulk export prefer
    /// [`InfluenceOracle::to_bytes`].
    #[must_use]
    pub fn posting_list(&self, v: VertexId) -> Vec<u32> {
        self.pool.postings(v)
    }

    /// Serialize the RR-set pool to the workspace binary format.
    ///
    /// Layout (see `imgraph::binio` for the framing): a `HEAD` section with
    /// `n` and `pool_size`, a `PLEN` section with each vertex's posting-list
    /// length, and a `PIDS` section with the concatenated ids — i.e. the
    /// posting lists in CSR form, which reload without any per-list parsing.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = BinWriter::new(POOL_MAGIC, POOL_VERSION);

        let mut head = Vec::with_capacity(16);
        binio::put_u64(&mut head, self.num_vertices as u64);
        binio::put_u64(&mut head, self.pool_size as u64);
        w.section(POOL_HEAD_TAG, &head);

        let mut lens = Vec::with_capacity(self.num_vertices * 4);
        let mut ids = Vec::new();
        for v in 0..self.num_vertices as u32 {
            let before = ids.len();
            self.pool
                .for_each_posting_inline(v, |id| binio::put_u32(&mut ids, id));
            binio::put_u32(&mut lens, ((ids.len() - before) / 4) as u32);
        }
        w.section(POOL_LEN_TAG, &lens);
        w.section(POOL_IDS_TAG, &ids);
        w.finish()
    }

    /// Deserialize an RR-set pool written by [`InfluenceOracle::to_bytes`].
    ///
    /// The signature is the no-resampling guarantee: no graph, no generator —
    /// only bytes. Corruption that survives the checksum (or hand-crafted
    /// input) is rejected with a typed [`BinError`], never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, BinError> {
        let sections = BinReader::new(bytes, POOL_MAGIC, POOL_VERSION)?.sections()?;

        let mut head = binio::require_section(&sections, POOL_HEAD_TAG)?;
        let n = usize::try_from(head.u64()?)
            .map_err(|_| BinError::Corrupt("vertex count exceeds usize".into()))?;
        let pool = usize::try_from(head.u64()?)
            .map_err(|_| BinError::Corrupt("pool size exceeds usize".into()))?;

        let mut len_payload = binio::require_section(&sections, POOL_LEN_TAG)?;
        if len_payload.remaining()
            != n.checked_mul(4)
                .ok_or_else(|| BinError::Corrupt("posting-length section size overflows".into()))?
        {
            return Err(BinError::Corrupt(format!(
                "posting-length section holds {} bytes, expected {}",
                len_payload.remaining(),
                n * 4
            )));
        }
        let mut ids_payload = binio::require_section(&sections, POOL_IDS_TAG)?;
        let mut vertex_to_sets: Vec<Vec<u32>> = Vec::with_capacity(n);
        for _ in 0..n {
            let len = len_payload.u32()? as usize;
            // Guard the allocation against forged lengths: the ids section
            // must still hold at least `len` entries.
            if len > ids_payload.remaining() / 4 {
                return Err(BinError::Truncated {
                    needed: len * 4,
                    available: ids_payload.remaining(),
                });
            }
            let mut list = Vec::with_capacity(len);
            for _ in 0..len {
                list.push(ids_payload.u32()?);
            }
            vertex_to_sets.push(list);
        }
        if ids_payload.remaining() != 0 {
            return Err(BinError::Corrupt(format!(
                "{} trailing bytes in posting-id section",
                ids_payload.remaining()
            )));
        }
        Self::builder(pool)
            .assemble(n, vertex_to_sets)
            .map_err(BinError::Corrupt)
    }

    /// Number of RR sets in the pool.
    #[must_use]
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Number of vertices of the underlying graph.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The oracle's 99 % confidence half-width `1.29·n/√pool` (Section 5.2).
    #[must_use]
    pub fn confidence_99(&self) -> f64 {
        1.29 * self.num_vertices as f64 / (self.pool_size as f64).sqrt()
    }

    /// Estimate `Inf(S)` as `n · (fraction of pool RR sets intersecting S)`.
    #[must_use]
    pub fn estimate(&self, seeds: &[VertexId]) -> f64 {
        if seeds.is_empty() {
            return 0.0;
        }
        if seeds.len() == 1 {
            // Fast path: a singleton's coverage is just its posting-list length.
            let hits = self.pool.posting_len(seeds[0]);
            return self.num_vertices as f64 * hits as f64 / self.pool_size as f64;
        }
        // Merge the posting lists and count distinct RR-set ids.
        let mut ids: Vec<u32> = Vec::new();
        for &s in seeds {
            self.pool.for_each_posting_inline(s, |id| ids.push(id));
        }
        ids.sort_unstable();
        ids.dedup();
        self.num_vertices as f64 * ids.len() as f64 / self.pool_size as f64
    }

    /// Allocation-free estimate of `Inf(S)` using a reusable scratch.
    ///
    /// Returns exactly the same value as [`InfluenceOracle::estimate`] (both
    /// count the distinct pool RR sets intersecting `S`), but touches only the
    /// scratch's epoch marks, so a serving hot path issuing millions of
    /// queries performs zero per-query allocation.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was sized for a different pool.
    #[must_use]
    pub fn estimate_with(&self, seeds: &[VertexId], scratch: &mut EstimateScratch) -> f64 {
        let covered = self.covered_with(seeds, scratch);
        self.num_vertices as f64 * covered as f64 / self.pool_size as f64
    }

    /// The number of distinct pool RR sets intersecting `S` — the integer
    /// numerator of [`InfluenceOracle::estimate_with`], exposed so a sharded
    /// deployment can merge *counts* across pool shards and re-derive the
    /// union estimate exactly (floating-point combination of per-shard
    /// spreads would not be byte-identical to the single-pool answer).
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was sized for a different pool.
    #[must_use]
    pub fn covered_with(&self, seeds: &[VertexId], scratch: &mut EstimateScratch) -> usize {
        assert_eq!(
            scratch.marks.len(),
            self.pool_size,
            "scratch sized for a different oracle pool"
        );
        if seeds.is_empty() {
            return 0;
        }
        if seeds.len() == 1 {
            return self.pool.posting_len(seeds[0]);
        }
        let epoch = scratch.next_epoch();
        let marks = &mut scratch.marks;
        let mut distinct = 0usize;
        for &s in seeds {
            // The scan runs directly over the store's form — for compressed
            // layouts the varint blocks are decoded on the fly, with no
            // materialized list.
            self.pool.for_each_posting_inline(s, |id| {
                let mark = &mut marks[id as usize];
                if *mark != epoch {
                    *mark = epoch;
                    distinct += 1;
                }
            });
        }
        distinct
    }

    /// One round of greedy maximum coverage, exposed as data: given the
    /// already-selected seed set, return every vertex's marginal coverage
    /// gain (the number of its pool RR sets not yet covered by `selected`)
    /// plus the covered count itself.
    ///
    /// This is the shard-side primitive of *distributed* greedy selection: a
    /// router summing these integer gain vectors across pool shards and
    /// picking the first argmax reproduces, round for round, exactly the
    /// selection [`InfluenceOracle::greedy_seed_set`] makes on the union
    /// pool. With `selected` empty the gains are the singleton coverage
    /// counts, i.e. the integer form of
    /// [`InfluenceOracle::singleton_influences`].
    ///
    /// # Panics
    ///
    /// Panics if any selected vertex is out of range.
    #[must_use]
    pub fn coverage_gains(&self, selected: &[VertexId]) -> (Vec<u64>, u64) {
        let mut covered = vec![false; self.pool_size];
        let mut covered_count = 0u64;
        for &s in selected {
            self.pool.for_each_posting_inline(s, |id| {
                let slot = &mut covered[id as usize];
                if !*slot {
                    *slot = true;
                    covered_count += 1;
                }
            });
        }
        let mut gains = Vec::with_capacity(self.num_vertices);
        for v in 0..self.num_vertices as u32 {
            let mut gain = 0u64;
            self.pool.for_each_posting_inline(v, |id| {
                gain += u64::from(!covered[id as usize]);
            });
            gains.push(gain);
        }
        (gains, covered_count)
    }

    /// A scratch sized for this oracle (convenience for worker threads).
    #[must_use]
    pub fn scratch(&self) -> EstimateScratch {
        EstimateScratch::for_oracle(self)
    }

    /// Estimate the influence spread of a canonical [`SeedSet`].
    #[must_use]
    pub fn estimate_seed_set(&self, seeds: &SeedSet) -> f64 {
        let vertices: Vec<VertexId> = seeds.iter().collect();
        self.estimate(&vertices)
    }

    /// Influence estimates for *every* singleton seed set, i.e. the per-vertex
    /// influence `Inf(v)` column used by Table 4 and by the theoretical cost
    /// model of Table 1.
    #[must_use]
    pub fn singleton_influences(&self) -> Vec<f64> {
        (0..self.num_vertices as u32)
            .map(|v| {
                self.num_vertices as f64 * self.pool.posting_len(v) as f64 / self.pool_size as f64
            })
            .collect()
    }

    /// The top `count` vertices by singleton influence, with their estimates,
    /// in descending order (ties broken by vertex id). This is exactly the
    /// content of Table 4 for `count = 3`.
    #[must_use]
    pub fn top_influential_vertices(&self, count: usize) -> Vec<(VertexId, f64)> {
        let mut all: Vec<(VertexId, f64)> = self
            .singleton_influences()
            .into_iter()
            .enumerate()
            .map(|(v, inf)| (v as VertexId, inf))
            .collect();
        all.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("influence is finite")
                .then(a.0.cmp(&b.0))
        });
        all.truncate(count);
        all
    }

    /// The paper's EPT quantity `(1/n)·Σ_v Inf(v)`: the expected size of an RR
    /// set, used in Table 1's cost model.
    #[must_use]
    pub fn expected_rr_size(&self) -> f64 {
        self.singleton_influences().iter().sum::<f64>() / self.num_vertices as f64
    }

    /// Greedy maximum coverage over the oracle's own RR-set pool.
    ///
    /// With a large pool this is the study's stand-in for "Exact Greedy" — the
    /// unique seed set all three algorithms converge to (Section 5.2 regards
    /// the seed set obtained at entropy 0 as Exact Greedy; running greedy
    /// directly on the shared oracle produces the same limit object). Returns
    /// the seeds in selection order together with the oracle estimate of their
    /// joint influence.
    #[must_use]
    pub fn greedy_seed_set(&self, k: usize) -> (Vec<VertexId>, f64) {
        let n = self.num_vertices;
        let k = k.min(n);
        let mut covered = vec![false; self.pool_size];
        let mut covered_count = 0usize;
        let mut selected: Vec<VertexId> = Vec::with_capacity(k);
        let mut is_selected = vec![false; n];
        for _ in 0..k {
            let mut best: Option<(VertexId, usize)> = None;
            for (v, &already) in is_selected.iter().enumerate() {
                if already {
                    continue;
                }
                let mut gain = 0usize;
                self.pool.for_each_posting_inline(v as u32, |id| {
                    gain += usize::from(!covered[id as usize]);
                });
                match best {
                    Some((_, best_gain)) if gain <= best_gain => {}
                    _ => best = Some((v as VertexId, gain)),
                }
            }
            let Some((chosen, _)) = best else { break };
            is_selected[chosen as usize] = true;
            self.pool.for_each_posting_inline(chosen, |id| {
                if !covered[id as usize] {
                    covered[id as usize] = true;
                    covered_count += 1;
                }
            });
            selected.push(chosen);
        }
        let influence = n as f64 * covered_count as f64 / self.pool_size as f64;
        (selected, influence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusion::monte_carlo_influence;
    use imgraph::DiGraph;
    use imrand::Pcg32;

    fn star(prob: f64) -> InfluenceGraph {
        let edges: Vec<_> = (1..5u32).map(|v| (0, v)).collect();
        InfluenceGraph::new(DiGraph::from_edges(5, &edges), vec![prob; 4])
    }

    #[test]
    fn oracle_matches_closed_form_on_star() {
        let ig = star(0.5);
        let mut rng = Pcg32::seed_from_u64(1);
        let oracle = InfluenceOracle::builder(100_000).sample_with_rng(&ig, &mut rng);
        assert!((oracle.estimate(&[0]) - 3.0).abs() < 0.05);
        assert!((oracle.estimate(&[1]) - 1.0).abs() < 0.05);
        // {0, 1}: hub covers 1 + 4·0.5 but vertex 1 is then already counted;
        // Inf({0,1}) = 2 + 3·0.5 = 3.5.
        assert!((oracle.estimate(&[0, 1]) - 3.5).abs() < 0.05);
        assert_eq!(oracle.estimate(&[]), 0.0);
    }

    #[test]
    fn oracle_agrees_with_monte_carlo() {
        let ig = star(0.3);
        let oracle =
            InfluenceOracle::builder(50_000).sample_with_rng(&ig, &mut Pcg32::seed_from_u64(2));
        let mc = monte_carlo_influence(&ig, &[0], 50_000, &mut Pcg32::seed_from_u64(3));
        let rr = oracle.estimate(&[0]);
        assert!((mc - rr).abs() < 0.1, "MC {mc} vs RR-oracle {rr}");
    }

    #[test]
    fn identical_seed_sets_get_identical_estimates() {
        let ig = star(0.5);
        let oracle =
            InfluenceOracle::builder(10_000).sample_with_rng(&ig, &mut Pcg32::seed_from_u64(4));
        let a = oracle.estimate(&[2, 0]);
        let b = oracle.estimate_seed_set(&SeedSet::new(vec![0, 2]));
        assert_eq!(a, b, "the oracle must be a pure function of the seed set");
    }

    #[test]
    fn confidence_shrinks_with_pool_size() {
        let ig = star(0.5);
        let small =
            InfluenceOracle::builder(100).sample_with_rng(&ig, &mut Pcg32::seed_from_u64(5));
        let large =
            InfluenceOracle::builder(10_000).sample_with_rng(&ig, &mut Pcg32::seed_from_u64(5));
        assert!(large.confidence_99() < small.confidence_99());
        assert!((small.confidence_99() - 1.29 * 5.0 / 10.0).abs() < 1e-12);
        assert_eq!(large.pool_size(), 10_000);
        assert_eq!(large.num_vertices(), 5);
    }

    #[test]
    fn top_influential_vertices_ranks_the_hub_first() {
        let ig = star(0.8);
        let oracle =
            InfluenceOracle::builder(20_000).sample_with_rng(&ig, &mut Pcg32::seed_from_u64(6));
        let top = oracle.top_influential_vertices(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 0);
        assert!(top[0].1 > top[1].1);
        // The remaining vertices are all leaves with influence ≈ 1.
        assert!((top[1].1 - 1.0).abs() < 0.1);
        assert!((top[2].1 - 1.0).abs() < 0.1);
        assert!(top[1].1 >= top[2].1);
    }

    #[test]
    fn expected_rr_size_matches_mean_singleton_influence() {
        let ig = star(0.5);
        let oracle =
            InfluenceOracle::builder(30_000).sample_with_rng(&ig, &mut Pcg32::seed_from_u64(7));
        // Σ Inf(v) = 3 + 4·1 = 7, so EPT = 7/5 = 1.4.
        assert!((oracle.expected_rr_size() - 1.4).abs() < 0.05);
    }

    #[test]
    fn greedy_seed_set_picks_the_hub_first() {
        let ig = star(0.8);
        let oracle =
            InfluenceOracle::builder(20_000).sample_with_rng(&ig, &mut Pcg32::seed_from_u64(9));
        let (seeds, influence) = oracle.greedy_seed_set(2);
        assert_eq!(seeds[0], 0, "the hub dominates every leaf");
        assert_eq!(seeds.len(), 2);
        // Inf({0, leaf}) = 2 + 3·0.8 = 4.4.
        assert!((influence - 4.4).abs() < 0.1, "joint influence {influence}");
        // The greedy influence agrees with the oracle's own estimate.
        assert!((oracle.estimate(&seeds) - influence).abs() < 1e-9);
        // k larger than n is clamped.
        assert_eq!(oracle.greedy_seed_set(100).0.len(), 5);
    }

    #[test]
    #[should_panic(expected = "non-empty RR-set pool")]
    fn zero_pool_panics() {
        let ig = star(0.5);
        let _ = InfluenceOracle::builder(0).sample_with_rng(&ig, &mut Pcg32::seed_from_u64(8));
    }

    #[test]
    fn estimate_with_scratch_matches_estimate() {
        let ig = star(0.5);
        let oracle =
            InfluenceOracle::builder(20_000).sample_with_rng(&ig, &mut Pcg32::seed_from_u64(12));
        let mut scratch = oracle.scratch();
        let seed_sets: &[&[VertexId]] = &[&[], &[0], &[3], &[0, 1], &[1, 2, 3, 4], &[4, 0, 4]];
        for &seeds in seed_sets {
            assert_eq!(
                oracle.estimate(seeds),
                oracle.estimate_with(seeds, &mut scratch),
                "scratch path must be bit-identical for {seeds:?}"
            );
        }
        // Repeated use of the same scratch stays correct (epoch discipline).
        for _ in 0..100 {
            assert_eq!(
                oracle.estimate(&[0, 1]),
                oracle.estimate_with(&[0, 1], &mut scratch)
            );
        }
    }

    #[test]
    fn scratch_epoch_wrap_resets_marks() {
        let ig = star(0.5);
        let oracle =
            InfluenceOracle::builder(1_000).sample_with_rng(&ig, &mut Pcg32::seed_from_u64(13));
        let mut scratch = oracle.scratch();
        scratch.epoch = u32::MAX - 1;
        let expected = oracle.estimate(&[0, 2]);
        for _ in 0..4 {
            // Crosses the wrap boundary; estimates must stay identical.
            assert_eq!(oracle.estimate_with(&[0, 2], &mut scratch), expected);
        }
    }

    #[test]
    #[should_panic(expected = "different oracle pool")]
    fn mismatched_scratch_panics() {
        let ig = star(0.5);
        let a = InfluenceOracle::builder(100).sample_with_rng(&ig, &mut Pcg32::seed_from_u64(14));
        let b = InfluenceOracle::builder(200).sample_with_rng(&ig, &mut Pcg32::seed_from_u64(14));
        let mut scratch = a.scratch();
        let _ = b.estimate_with(&[0], &mut scratch);
    }

    #[test]
    fn pool_round_trips_through_bytes() {
        let ig = star(0.7);
        let oracle = InfluenceOracle::builder(5_000)
            .seed(21)
            .backend(Backend::Sequential)
            .sample(&ig);
        let bytes = oracle.to_bytes();
        let back = InfluenceOracle::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.pool_size(), oracle.pool_size());
        assert_eq!(back.num_vertices(), oracle.num_vertices());
        for v in 0..5u32 {
            assert_eq!(back.posting_list(v), oracle.posting_list(v));
        }
        // Re-encoding is byte-identical, and estimates are bit-identical.
        assert_eq!(back.to_bytes(), bytes);
        for v in 0..5u32 {
            assert_eq!(back.estimate(&[v]), oracle.estimate(&[v]));
        }
        assert_eq!(back.estimate(&[0, 3, 4]), oracle.estimate(&[0, 3, 4]));
    }

    #[test]
    fn pool_corruption_and_truncation_are_typed_errors() {
        let ig = star(0.7);
        let oracle =
            InfluenceOracle::builder(500).sample_with_rng(&ig, &mut Pcg32::seed_from_u64(15));
        let bytes = oracle.to_bytes();
        for cut in [0, 7, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(InfluenceOracle::from_bytes(&bytes[..cut]).is_err());
        }
        let mut damaged = bytes.clone();
        let mid = damaged.len() / 2;
        damaged[mid] ^= 0x01;
        assert!(matches!(
            InfluenceOracle::from_bytes(&damaged),
            Err(BinError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn incremental_build_is_backend_independent_and_carries_traces() {
        let ig = star(0.5);
        let seq = InfluenceOracle::builder(3_000)
            .seed(11)
            .backend(Backend::Sequential)
            .incremental()
            .sample(&ig);
        let par = InfluenceOracle::builder(3_000)
            .seed(11)
            .backend(Backend::Parallel { threads: 4 })
            .incremental()
            .sample(&ig);
        assert_eq!(seq.to_bytes(), par.to_bytes());
        assert!(seq.is_incremental());
        assert_eq!(seq.incremental_base_seed(), Some(11));
        // Every trace is sorted and inverse to the posting lists.
        for set_id in 0..3_000u32 {
            let trace = seq.trace(set_id).expect("trace exists");
            assert!(trace.windows(2).all(|w| w[0] < w[1]), "trace sorted");
            for &v in &trace {
                assert!(seq.posting_list(v).contains(&set_id));
            }
        }
        // The classic builders carry no incremental state.
        assert!(!InfluenceOracle::builder(100)
            .sample_with_rng(&ig, &mut Pcg32::seed_from_u64(1))
            .is_incremental());
        assert!(!InfluenceOracle::builder(100)
            .seed(1)
            .backend(Backend::Sequential)
            .sample(&ig)
            .is_incremental());
    }

    #[test]
    fn attach_incremental_reconstructs_the_native_traces() {
        let ig = star(0.4);
        let native = InfluenceOracle::builder(2_000)
            .seed(5)
            .backend(Backend::Sequential)
            .incremental()
            .sample(&ig);
        let mut reloaded = InfluenceOracle::from_bytes(&native.to_bytes()).unwrap();
        assert!(!reloaded.is_incremental());
        reloaded.attach_incremental(5, 0);
        for set_id in 0..2_000u32 {
            assert_eq!(reloaded.trace(set_id), native.trace(set_id));
        }
    }

    #[test]
    fn apply_delta_matches_a_from_scratch_rebuild_byte_for_byte() {
        use imgraph::MutableInfluenceGraph;
        let ig = star(0.5);
        let mut mutable = MutableInfluenceGraph::from_graph(&ig);
        let mut oracle = InfluenceOracle::builder(2_500)
            .seed(21)
            .backend(Backend::Sequential)
            .incremental()
            .sample(&ig);

        let deltas = [
            GraphDelta::InsertEdge {
                source: 2,
                target: 0,
                probability: 0.5,
            },
            GraphDelta::SetProbability {
                source: 0,
                target: 3,
                probability: 1.0,
            },
            GraphDelta::DeleteEdge {
                source: 0,
                target: 1,
            },
            GraphDelta::InsertEdge {
                source: 4,
                target: 2,
                probability: 0.25,
            },
        ];
        for delta in &deltas {
            mutable.apply(delta).unwrap();
            let after = mutable.materialize();
            let resampled = oracle.apply_delta(&after, delta).unwrap();
            let rebuilt = InfluenceOracle::builder(2_500)
                .seed(21)
                .backend(Backend::Sequential)
                .incremental()
                .sample(&after);
            assert_eq!(
                oracle.to_bytes(),
                rebuilt.to_bytes(),
                "maintained pool must be byte-identical to a rebuild after {delta}"
            );
            // Only the posting list of the head vertex was dirty — far fewer
            // sets than the pool on this star graph.
            assert!(resampled < 2_500, "resampled {resampled} of 2500");
            // Estimates agree bit-for-bit too.
            for v in 0..5u32 {
                assert_eq!(oracle.estimate(&[v]), rebuilt.estimate(&[v]));
            }
            assert_eq!(oracle.estimate(&[0, 2, 4]), rebuilt.estimate(&[0, 2, 4]));
        }
    }

    #[test]
    fn apply_delta_batch_matches_rebuild_and_per_delta_application() {
        use imgraph::MutableInfluenceGraph;
        let ig = star(0.5);
        let deltas = [
            GraphDelta::InsertEdge {
                source: 2,
                target: 0,
                probability: 0.5,
            },
            GraphDelta::SetProbability {
                source: 0,
                target: 3,
                probability: 1.0,
            },
            GraphDelta::DeleteEdge {
                source: 0,
                target: 1,
            },
            // Two deltas share head 2: the union must count its sets once.
            GraphDelta::InsertEdge {
                source: 4,
                target: 2,
                probability: 0.25,
            },
            GraphDelta::SetProbability {
                source: 4,
                target: 2,
                probability: 1.0,
            },
        ];

        let mut mutable = MutableInfluenceGraph::from_graph(&ig);
        let mut batched = InfluenceOracle::builder(2_500)
            .seed(21)
            .backend(Backend::Sequential)
            .incremental()
            .sample(&ig);
        let mut per_delta = batched.clone();

        // Per-delta reference: resample after every single delta.
        for delta in &deltas {
            mutable.apply(delta).unwrap();
            per_delta
                .apply_delta(&mutable.materialize(), delta)
                .unwrap();
        }
        let after = mutable.materialize();

        // Batched path: one resample of the dirty union on the final graph.
        let resampled = batched.apply_delta_batch(&after, &deltas).unwrap();
        let rebuilt = InfluenceOracle::builder(2_500)
            .seed(21)
            .backend(Backend::Sequential)
            .incremental()
            .sample(&after);
        assert_eq!(batched.to_bytes(), rebuilt.to_bytes());
        assert_eq!(batched.to_bytes(), per_delta.to_bytes());
        // The union never exceeds the per-delta total (shared heads dedup).
        assert!(resampled < 2_500);

        // An empty batch is a no-op.
        let before = batched.to_bytes();
        assert_eq!(batched.apply_delta_batch(&after, &[]).unwrap(), 0);
        assert_eq!(batched.to_bytes(), before);

        // Errors leave the pool untouched.
        let out_of_range = GraphDelta::DeleteEdge {
            source: 0,
            target: 99,
        };
        assert!(batched.apply_delta_batch(&after, &[out_of_range]).is_err());
        assert_eq!(batched.to_bytes(), before);
        let mut plain =
            InfluenceOracle::builder(100).sample_with_rng(&ig, &mut Pcg32::seed_from_u64(2));
        assert!(plain.apply_delta_batch(&ig, &deltas).is_err());
    }

    #[test]
    fn apply_delta_rejects_bad_inputs_and_non_incremental_pools() {
        let ig = star(0.5);
        let delta = GraphDelta::SetProbability {
            source: 0,
            target: 1,
            probability: 0.9,
        };
        let mut plain =
            InfluenceOracle::builder(100).sample_with_rng(&ig, &mut Pcg32::seed_from_u64(2));
        assert!(plain.apply_delta(&ig, &delta).is_err());

        let mut incremental = InfluenceOracle::builder(100)
            .seed(2)
            .backend(Backend::Sequential)
            .incremental()
            .sample(&ig);
        let smaller = {
            let edges: Vec<_> = (1..3u32).map(|v| (0, v)).collect();
            InfluenceGraph::new(imgraph::DiGraph::from_edges(3, &edges), vec![0.5; 2])
        };
        assert!(incremental.apply_delta(&smaller, &delta).is_err());
        let out_of_range = GraphDelta::DeleteEdge {
            source: 0,
            target: 99,
        };
        assert!(incremental.apply_delta(&ig, &out_of_range).is_err());
    }

    #[test]
    fn from_parts_validates_invariants() {
        // Valid: two vertices, pool of 3.
        let ok = InfluenceOracle::builder(3).assemble(2, vec![vec![0, 2], vec![1]]);
        assert!(ok.is_ok());
        // Set id out of range.
        assert!(InfluenceOracle::builder(3)
            .assemble(2, vec![vec![3], vec![]])
            .is_err());
        // Not strictly increasing.
        assert!(InfluenceOracle::builder(3)
            .assemble(2, vec![vec![1, 1], vec![]])
            .is_err());
        // Wrong list count.
        assert!(InfluenceOracle::builder(3)
            .assemble(2, vec![vec![0]])
            .is_err());
        // Degenerate dimensions.
        assert!(InfluenceOracle::builder(3).assemble(0, vec![]).is_err());
        assert!(InfluenceOracle::builder(0)
            .assemble(2, vec![vec![], vec![]])
            .is_err());
    }

    /// The deprecated constructors forward to the builder without changing a
    /// single sampled byte (external callers relying on them keep working).
    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_forward_to_the_builder() {
        let ig = star(0.5);
        assert_eq!(
            InfluenceOracle::build(&ig, 500, &mut Pcg32::seed_from_u64(3)).to_bytes(),
            InfluenceOracle::builder(500)
                .sample_with_rng(&ig, &mut Pcg32::seed_from_u64(3))
                .to_bytes()
        );
        assert_eq!(
            InfluenceOracle::build_with_backend(&ig, 500, 9, Backend::Sequential).to_bytes(),
            InfluenceOracle::builder(500)
                .seed(9)
                .backend(Backend::Sequential)
                .sample(&ig)
                .to_bytes()
        );
        assert_eq!(
            InfluenceOracle::build_incremental(&ig, 500, 9, Backend::Sequential).to_bytes(),
            InfluenceOracle::builder(500)
                .seed(9)
                .backend(Backend::Sequential)
                .incremental()
                .sample(&ig)
                .to_bytes()
        );
        assert!(InfluenceOracle::from_parts(2, 3, vec![vec![0], vec![1]]).is_ok());
    }

    #[test]
    fn shard_layout_balances_and_covers_the_pool() {
        let ranges = shard_layout(10, 3);
        assert_eq!(
            ranges,
            vec![
                ShardRange { offset: 0, len: 4 },
                ShardRange { offset: 4, len: 3 },
                ShardRange { offset: 7, len: 3 },
            ]
        );
        let total: usize = ranges.iter().map(|r| r.len).sum();
        assert_eq!(total, 10);
        // Exact split when divisible.
        for (i, r) in shard_layout(8, 4).iter().enumerate() {
            assert_eq!(r.len, 2);
            assert_eq!(r.offset, 2 * i as u64);
        }
    }

    #[test]
    #[should_panic(expected = "cannot feed")]
    fn shard_layout_rejects_more_shards_than_sets() {
        let _ = shard_layout(2, 3);
    }

    /// The shard-union invariant: N shard pools built from one
    /// [`shard_layout`] are, set for set, byte-identical slices of the single
    /// pool built at the same seed — including after a broadcast mutation.
    #[test]
    fn shard_pools_union_byte_identically_into_the_single_pool() {
        use imgraph::MutableInfluenceGraph;
        let ig = star(0.5);
        const POOL: usize = 2_000;
        let single = InfluenceOracle::builder(POOL)
            .seed(21)
            .incremental()
            .sample(&ig);
        let mut shards: Vec<InfluenceOracle> = shard_layout(POOL, 3)
            .into_iter()
            .map(|r| {
                InfluenceOracle::builder(r.len)
                    .seed(21)
                    .shard_offset(r.offset)
                    .sample(&ig)
            })
            .collect();

        let check_union = |single: &InfluenceOracle, shards: &[InfluenceOracle]| {
            let mut global = 0u32;
            for shard in shards {
                assert_eq!(shard.set_id_offset(), Some(u64::from(global)));
                for local in 0..shard.pool_size() as u32 {
                    assert_eq!(
                        shard.trace(local),
                        single.trace(global),
                        "set {global} must be identical in shard and single pool"
                    );
                    global += 1;
                }
            }
            assert_eq!(global as usize, single.pool_size());
            // Covered counts add up across shards for any seed set.
            let mut scratch = single.scratch();
            let mut shard_scratches: Vec<_> = shards.iter().map(InfluenceOracle::scratch).collect();
            for seeds in [vec![0u32], vec![0, 2], vec![1, 3, 4]] {
                let total: usize = shards
                    .iter()
                    .zip(&mut shard_scratches)
                    .map(|(s, sc)| s.covered_with(&seeds, sc))
                    .sum();
                assert_eq!(total, single.covered_with(&seeds, &mut scratch));
            }
            // Gain vectors sum elementwise to the single pool's gains.
            for selected in [vec![], vec![0u32], vec![0, 1]] {
                let (single_gains, single_covered) = single.coverage_gains(&selected);
                let mut sum = vec![0u64; single.num_vertices()];
                let mut covered = 0u64;
                for s in shards {
                    let (g, c) = s.coverage_gains(&selected);
                    for (acc, x) in sum.iter_mut().zip(g) {
                        *acc += x;
                    }
                    covered += c;
                }
                assert_eq!(sum, single_gains);
                assert_eq!(covered, single_covered);
            }
        };
        check_union(&single, &shards);

        // Broadcast the same mutation everywhere: the invariant must hold at
        // the mutated version too (shard streams replay their global ids).
        let mut mutable = MutableInfluenceGraph::from_graph(&ig);
        let delta = GraphDelta::InsertEdge {
            source: 2,
            target: 0,
            probability: 0.7,
        };
        mutable.apply(&delta).unwrap();
        let after = mutable.materialize();
        let mut single = single;
        single.apply_delta(&after, &delta).unwrap();
        for shard in &mut shards {
            shard.apply_delta(&after, &delta).unwrap();
        }
        check_union(&single, &shards);
    }

    /// The load-bearing pool-store invariant: every layout answers every
    /// query byte-identically at every maintenance epoch — `to_bytes`,
    /// estimates, coverage counts, gains, greedy selection and traces.
    #[test]
    fn pool_layouts_are_byte_identical_at_every_epoch() {
        use imgraph::MutableInfluenceGraph;
        let ig = star(0.5);
        let build = |layout: PoolLayout| {
            InfluenceOracle::builder(2_000)
                .seed(21)
                .incremental()
                .layout(layout)
                .sample(&ig)
        };
        let mut raw = build(PoolLayout::Raw);
        let mut compressed = build(PoolLayout::Compressed);
        let mut tiered = build(PoolLayout::Tiered);
        assert_eq!(raw.pool_layout(), PoolLayout::Raw);
        assert_eq!(compressed.pool_layout(), PoolLayout::Compressed);
        assert_eq!(tiered.pool_layout(), PoolLayout::Tiered);

        let deltas = [
            GraphDelta::InsertEdge {
                source: 3,
                target: 0,
                probability: 0.6,
            },
            GraphDelta::DeleteEdge {
                source: 0,
                target: 2,
            },
            GraphDelta::SetProbability {
                source: 0,
                target: 1,
                probability: 0.9,
            },
        ];
        let mut mutable = MutableInfluenceGraph::from_graph(&ig);
        let check_epoch =
            |raw: &InfluenceOracle, compressed: &InfluenceOracle, tiered: &InfluenceOracle| {
                let bytes = raw.to_bytes();
                assert_eq!(compressed.to_bytes(), bytes, "compressed to_bytes");
                assert_eq!(tiered.to_bytes(), bytes, "tiered to_bytes");
                let mut scratches = [raw.scratch(), compressed.scratch(), tiered.scratch()];
                for seeds in [vec![0u32], vec![1, 4], vec![0, 1, 2, 3, 4]] {
                    let want = raw.estimate(&seeds);
                    for (o, sc) in [compressed, tiered].into_iter().zip(&mut scratches[1..]) {
                        assert_eq!(o.estimate(&seeds), want);
                        assert_eq!(o.estimate_with(&seeds, sc), want);
                    }
                }
                assert_eq!(compressed.coverage_gains(&[0]), raw.coverage_gains(&[0]));
                assert_eq!(tiered.coverage_gains(&[0]), raw.coverage_gains(&[0]));
                assert_eq!(compressed.greedy_seed_set(2), raw.greedy_seed_set(2));
                assert_eq!(tiered.greedy_seed_set(2), raw.greedy_seed_set(2));
                for set_id in (0..2_000u32).step_by(97) {
                    assert_eq!(compressed.trace(set_id), raw.trace(set_id));
                    assert_eq!(tiered.trace(set_id), raw.trace(set_id));
                }
            };
        check_epoch(&raw, &compressed, &tiered);
        for delta in &deltas {
            mutable.apply(delta).unwrap();
            let after = mutable.materialize();
            let n_raw = raw.apply_delta(&after, delta).unwrap();
            assert_eq!(compressed.apply_delta(&after, delta).unwrap(), n_raw);
            assert_eq!(tiered.apply_delta(&after, delta).unwrap(), n_raw);
            check_epoch(&raw, &compressed, &tiered);
        }
        // Converting layouts after mutations still yields identical bytes.
        compressed.convert_layout(PoolLayout::Raw);
        assert_eq!(compressed.to_bytes(), raw.to_bytes());
        // The compressed pool is the smaller one on this dense star pool.
        assert!(
            InfluenceOracle::builder(2_000)
                .seed(21)
                .layout(PoolLayout::Compressed)
                .sample(&ig)
                .pool_resident_bytes()
                < build(PoolLayout::Raw).pool_resident_bytes()
        );
    }

    #[test]
    fn covered_with_and_coverage_gains_match_the_estimators() {
        let ig = star(0.5);
        let oracle = InfluenceOracle::builder(5_000)
            .seed(13)
            .incremental()
            .sample(&ig);
        let mut scratch = oracle.scratch();
        for seeds in [vec![], vec![0u32], vec![0, 1], vec![1, 2, 3, 4]] {
            let covered = oracle.covered_with(&seeds, &mut scratch);
            assert_eq!(
                oracle.estimate(&seeds),
                oracle.num_vertices() as f64 * covered as f64 / oracle.pool_size() as f64
            );
        }
        // Empty selection: gains are the singleton coverage counts.
        let (gains, covered) = oracle.coverage_gains(&[]);
        assert_eq!(covered, 0);
        for (v, &g) in gains.iter().enumerate() {
            assert_eq!(g as usize, oracle.posting_list(v as u32).len());
        }
        // One greedy round driven by gains equals greedy_seed_set's pick.
        let first = gains
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(v, _)| v as u32)
            .unwrap();
        assert_eq!(oracle.greedy_seed_set(1).0, vec![first]);
        // Gains given the first pick never exceed the unconditional gains.
        let (gains_after, covered_after) = oracle.coverage_gains(&[first]);
        assert_eq!(covered_after, gains[first as usize]);
        assert!(gains_after.iter().zip(&gains).all(|(a, b)| a <= b));
        assert_eq!(gains_after[first as usize], 0);
    }
}
