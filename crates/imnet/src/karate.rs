//! Zachary's karate club network (Zachary, 1977), the `Karate` data set of
//! Table 3: 34 vertices, 78 undirected friendships, i.e. 156 directed arcs.
//!
//! This is the one real-world network of the study small enough to embed in
//! source form; the edge list below is the canonical 1-indexed list shifted to
//! 0-indexed vertex ids. Following the paper (and KONECT's handling of
//! undirected networks), each undirected edge is materialised as two arcs.

use imgraph::{DiGraph, GraphBuilder};

/// Number of vertices in the karate club network.
pub const NUM_VERTICES: usize = 34;

/// The 78 undirected friendship edges, 0-indexed.
pub const UNDIRECTED_EDGES: [(u32, u32); 78] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (0, 4),
    (0, 5),
    (0, 6),
    (0, 7),
    (0, 8),
    (0, 10),
    (0, 11),
    (0, 12),
    (0, 13),
    (0, 17),
    (0, 19),
    (0, 21),
    (0, 31),
    (1, 2),
    (1, 3),
    (1, 7),
    (1, 13),
    (1, 17),
    (1, 19),
    (1, 21),
    (1, 30),
    (2, 3),
    (2, 7),
    (2, 8),
    (2, 9),
    (2, 13),
    (2, 27),
    (2, 28),
    (2, 32),
    (3, 7),
    (3, 12),
    (3, 13),
    (4, 6),
    (4, 10),
    (5, 6),
    (5, 10),
    (5, 16),
    (6, 16),
    (8, 30),
    (8, 32),
    (8, 33),
    (9, 33),
    (13, 33),
    (14, 32),
    (14, 33),
    (15, 32),
    (15, 33),
    (18, 32),
    (18, 33),
    (19, 33),
    (20, 32),
    (20, 33),
    (22, 32),
    (22, 33),
    (23, 25),
    (23, 27),
    (23, 29),
    (23, 32),
    (23, 33),
    (24, 25),
    (24, 27),
    (24, 31),
    (25, 31),
    (26, 29),
    (26, 33),
    (27, 33),
    (28, 31),
    (28, 33),
    (29, 32),
    (29, 33),
    (30, 32),
    (30, 33),
    (31, 32),
    (31, 33),
    (32, 33),
];

/// Build the karate club as a directed graph with 156 arcs (each undirected
/// edge in both directions), matching the `m = 156` of Table 3.
#[must_use]
pub fn karate_club() -> DiGraph {
    let mut builder = GraphBuilder::with_capacity(NUM_VERTICES, UNDIRECTED_EDGES.len() * 2);
    for &(u, v) in &UNDIRECTED_EDGES {
        builder.add_undirected_edge(u, v);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_counts() {
        let g = karate_club();
        assert_eq!(g.num_vertices(), 34);
        assert_eq!(g.num_edges(), 156);
    }

    #[test]
    fn table3_max_degrees() {
        // Table 3 reports ∆⁺ = ∆⁻ = 17 (vertex 33 in 0-indexed ids, the club
        // instructor "John A.").
        let g = karate_club();
        assert_eq!(g.max_out_degree(), 17);
        assert_eq!(g.max_in_degree(), 17);
        assert_eq!(g.out_degree(33), 17);
        assert_eq!(g.in_degree(33), 17);
        // The other famous hub, vertex 0 ("Mr. Hi"), has degree 16.
        assert_eq!(g.out_degree(0), 16);
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in &UNDIRECTED_EDGES {
            assert_ne!(u, v, "self-loop in karate data");
            assert!(u < v, "edges must be stored with u < v: ({u}, {v})");
            assert!(seen.insert((u, v)), "duplicate edge ({u}, {v})");
            assert!(v < 34);
        }
        assert_eq!(seen.len(), 78);
    }

    #[test]
    fn symmetric_adjacency() {
        let g = karate_club();
        for u in g.vertices() {
            for &v in g.out_neighbors(u) {
                assert!(
                    g.out_neighbors(v).contains(&u),
                    "missing reverse arc for ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn clustering_coefficient_matches_table3() {
        // Table 3 reports a clustering coefficient of 0.26 for Karate.
        let g = karate_club();
        let c = imgraph::stats::global_clustering_coefficient(&g).unwrap();
        assert!(
            (c - 0.2557).abs() < 0.01,
            "clustering coefficient {c} should be ≈ 0.26"
        );
    }

    #[test]
    fn average_distance_matches_table3() {
        // Table 3 reports an average distance of 2.41.
        let g = karate_club();
        let d = imgraph::stats::estimate_average_distance(&g, 34, 1).unwrap();
        assert!(
            (d - 2.41).abs() < 0.02,
            "average distance {d} should be ≈ 2.41"
        );
    }

    #[test]
    fn graph_is_connected() {
        assert_eq!(
            imgraph::components::largest_weak_component(&karate_club()),
            34
        );
    }
}
