//! `imexp` — run the paper's experiments from the command line.
//!
//! ```text
//! imexp <experiment> [--scale quick|standard|paper] [--json]
//! imexp all [--scale quick]
//! imexp list
//! imexp index <dataset> [--model uc0.1] [--pool 100000] [--seed 7] --out <path>
//! ```
//!
//! Each experiment name corresponds to one table or figure of the paper; see
//! `imexp list` or DESIGN.md for the mapping. `imexp index` persists the
//! shared influence oracle of a dataset as an `imserve` index artifact, so
//! the serving layer reuses exactly the pool the experiments evaluate with.

use std::process::ExitCode;

use imexp::cli::{self, Cli};
use imexp::config::ExperimentScale;
use imexp::experiments::{experiment_names, run_by_name};

fn print_usage() {
    eprintln!(
        "usage: imexp <experiment|all|list> [--scale quick|standard|paper] [--json]\n\
         \u{20}      imexp index <dataset> [--model uc0.1|uc0.01|iwc|owc] [--pool N] [--seed S] --out <path>\n\
         \u{20}      imexp loadtest --backend local|remote|remote-reactor|sharded:N|all [--backend …] \
         [--dataset <name>|chung-lu] [--model M] [--pool N] [--seed S] [--connections N] \
         [--requests N] [--k K] [--arrival-rps R] [--bench-out <path>]\n\
         \u{20}      imexp pool [--nodes N] [--degree D] [--model M] [--pool N] [--seed S] \
         [--queries Q] [--k K] [--bench-out <path>]"
    );
    eprintln!("experiments: {}", experiment_names().join(", "));
}

fn print_report(name: &str, scale: ExperimentScale, json: bool) -> Result<(), String> {
    let report = run_by_name(name, scale).ok_or_else(|| format!("unknown experiment {name:?}"))?;
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serialises")
        );
    } else {
        println!("{report}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match cli::parse(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };

    match parsed {
        Cli::List => {
            for name in experiment_names() {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        Cli::All { scale, json } => {
            for name in experiment_names() {
                eprintln!("running {name} …");
                if let Err(e) = print_report(name, scale, json) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Cli::Run { name, scale, json } => match print_report(&name, scale, json) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                print_usage();
                ExitCode::FAILURE
            }
        },
        Cli::Index {
            dataset,
            model,
            pool,
            seed,
            out,
        } => {
            let artifact = match imserve::build_dataset_index(&dataset, &model, pool, seed) {
                Ok(artifact) => artifact,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = artifact.save(&out) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote index {} / {} (pool {}) -> {}",
                artifact.meta.graph_id, artifact.meta.model, artifact.meta.pool_size, out
            );
            ExitCode::SUCCESS
        }
        Cli::Loadtest(spec) => {
            let backends: Vec<String> = spec.backends.iter().map(ToString::to_string).collect();
            eprintln!(
                "loadtest: backends [{}] over {}/{} (pool {}, seed {}{})",
                backends.join(", "),
                spec.dataset,
                spec.model,
                spec.pool,
                spec.seed,
                match spec.config.arrival_rps {
                    Some(rps) => format!(", open loop at {rps} req/s"),
                    None => ", closed loop".to_string(),
                }
            );
            let runs = match imexp::loadtest::run(&spec) {
                Ok(runs) => runs,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for run in &runs {
                println!("== backend {} ==", run.backend);
                println!("{}", run.report);
                if let Some(checked) = run.verified_probes {
                    println!("sharded ≡ single-pool local: OK ({checked} probes byte-identical)");
                }
            }
            if let Some(path) = &spec.bench_out {
                let document = imexp::loadtest::bench_document(&spec, &runs);
                let json = serde_json::to_string_pretty(&document).expect("document serialises");
                if let Err(e) = std::fs::write(path, json + "\n") {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote benchmark document -> {path}");
            }
            ExitCode::SUCCESS
        }
        Cli::Pool(spec) => {
            let result = match imexp::poolbench::run(&spec) {
                Ok(result) => result,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{}", result.table().render());
            println!(
                "compressed is {:.2}x smaller than raw per RR set \
                 ({} probes bit-identical across layouts)",
                result.compression_ratio(),
                result.verified_probes
            );
            if let Some(path) = &spec.bench_out {
                let document = imexp::poolbench::bench_document(&spec, &result);
                let json = serde_json::to_string_pretty(&document).expect("document serialises");
                if let Err(e) = std::fs::write(path, json + "\n") {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote benchmark document -> {path}");
            }
            ExitCode::SUCCESS
        }
    }
}
