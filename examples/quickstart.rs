//! Quickstart: pick seeds on the Karate club with all three approaches.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example mirrors the paper's setup at the smallest possible scale:
//! build an influence graph (Karate, uniform cascade 0.1), run Oneshot,
//! Snapshot and RIS at a fixed sample number, and evaluate every returned
//! seed set with a single shared influence oracle so the numbers are directly
//! comparable.

use im_study::prelude::*;

fn main() {
    // 1. The network: Zachary's karate club (34 vertices, 156 arcs) with the
    //    uniform cascade uc0.1 probability assignment.
    let graph = Dataset::Karate.influence_graph(ProbabilityModel::uc01(), 0);
    println!(
        "network: Karate — {} vertices, {} edges, sum of edge probabilities {:.1}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.probability_sum()
    );

    // 2. A shared influence oracle (the paper reuses one estimator across all
    //    runs so identical seed sets get identical estimates).
    let mut rng = default_rng(0xC0FFEE);
    let oracle = InfluenceOracle::builder(200_000).sample_with_rng(&graph, &mut rng);
    println!(
        "oracle: {} RR sets, 99% confidence half-width {:.3}\n",
        oracle.pool_size(),
        oracle.confidence_99()
    );

    // 3. Run each approach once with k = 2 seeds and a per-approach sample
    //    number in the ballpark the paper found sufficient for Karate.
    let k = 2;
    let algorithms = [
        Algorithm::Oneshot { beta: 1_024 },
        Algorithm::Snapshot { tau: 256 },
        Algorithm::Ris { theta: 16_384 },
    ];
    println!(
        "{:<20} {:<14} {:>10} {:>14} {:>14}",
        "algorithm", "seeds", "influence", "vertices", "edges"
    );
    for algorithm in algorithms {
        let outcome = algorithm.run(&graph, k, 42);
        let influence = oracle.estimate_seed_set(&outcome.seeds);
        println!(
            "{:<20} {:<14} {:>10.3} {:>14} {:>14}",
            algorithm.to_string(),
            outcome.seeds.to_string(),
            influence,
            outcome.traversal_cost.vertices,
            outcome.traversal_cost.edges,
        );
    }

    // 4. The "exact greedy" limit object the paper compares against: greedy
    //    maximum coverage over the oracle's own pool.
    let (exact_seeds, exact_influence) = oracle.greedy_seed_set(k);
    println!(
        "\nexact greedy reference: {} with influence {:.3}",
        SeedSet::new(exact_seeds),
        exact_influence
    );
    println!(
        "(all three algorithms converge to this set as the sample number grows — Section 5.1)"
    );
}
